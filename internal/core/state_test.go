package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroValueIsInitialState(t *testing.T) {
	var s State
	if s.Role() != RoleZero || s.Phase() != 0 {
		t.Fatalf("zero State = %v", s)
	}
}

func TestPhaseRoundtrip(t *testing.T) {
	f := func(raw uint32, p uint8) bool {
		s := State(raw)
		out := s.WithPhase(p)
		// Phase replaced, everything else preserved.
		return out.Phase() == p && out&^phaseMask == s&^phaseMask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoinRoundtrip(t *testing.T) {
	f := func(p, lvl uint8, stopped bool) bool {
		lvl %= 16
		s := State(0).WithPhase(p).withCoin(lvl, stopped)
		return s.Role() == RoleC && s.Phase() == p &&
			s.CoinLevel() == lvl && s.CoinStopped() == stopped
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInhibRoundtrip(t *testing.T) {
	f := func(p, drag uint8, stopped, high bool) bool {
		drag %= 16
		s := State(0).WithPhase(p).withInhib(drag, stopped, high)
		return s.Role() == RoleI && s.Phase() == p &&
			s.InhibDrag() == drag && s.InhibStopped() == stopped && s.InhibHigh() == high
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeaderRoundtrip(t *testing.T) {
	f := func(p uint8, mRaw, fRaw, cnt, drag uint8, heads bool) bool {
		m := LeaderMode(mRaw % 3)
		fl := Flip(fRaw % 3)
		cnt %= 64
		drag %= 16
		s := State(0).WithPhase(p).withLeader(m, fl, heads, cnt, drag)
		return s.Role() == RoleL && s.Phase() == p && s.Mode() == m &&
			s.FlipVal() == fl && s.HeadsSeen() == heads &&
			s.Cnt() == cnt && s.LeaderDrag() == drag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlive(t *testing.T) {
	mk := func(m LeaderMode) State { return State(0).withLeader(m, FlipNone, false, 3, 0) }
	if !mk(ModeActive).Alive() || !mk(ModePassive).Alive() {
		t.Fatal("A and P candidates are alive")
	}
	if mk(ModeWithdrawn).Alive() {
		t.Fatal("W is not alive")
	}
	if (State(0).withCoin(1, false)).Alive() {
		t.Fatal("coins are not alive candidates")
	}
}

func TestRolePayloadSwitch(t *testing.T) {
	// Converting roles must clear the previous payload.
	s := State(0).WithPhase(7).withLeader(ModePassive, FlipHeads, true, 9, 3)
	d := s.withRolePayload(RoleD, 0)
	if d.Role() != RoleD || d.Phase() != 7 {
		t.Fatalf("conversion broken: %v", d)
	}
	if d&^(phaseMask|State(roleMask)<<roleShift) != 0 {
		t.Fatalf("stale payload bits: %x", uint32(d))
	}
}

func TestStateStrings(t *testing.T) {
	cases := []struct {
		s    State
		want string
	}{
		{State(0).withCoin(2, true), "C⟨"},
		{State(0).withInhib(1, true, true), "I⟨"},
		{State(0).withLeader(ModeActive, FlipHeads, true, 5, 2), "L⟨"},
		{State(0), "0⟨"},
		{State(0).withRolePayload(RoleD, 0), "D⟨"},
		{State(0).withRolePayload(RoleX, 0), "X⟨"},
	}
	for _, c := range cases {
		if got := c.s.String(); !strings.HasPrefix(got, c.want) {
			t.Errorf("String() = %q, want prefix %q", got, c.want)
		}
	}
}

func TestEnumStrings(t *testing.T) {
	if RoleC.String() != "C" || RoleL.String() != "L" || Role(7).String() == "" {
		t.Fatal("Role.String broken")
	}
	if ModeActive.String() != "A" || ModeWithdrawn.String() != "W" || LeaderMode(9).String() == "" {
		t.Fatal("LeaderMode.String broken")
	}
	if FlipHeads.String() != "heads" || FlipNone.String() != "none" || Flip(9).String() == "" {
		t.Fatal("Flip.String broken")
	}
}
