package core

import (
	"math"
	"testing"

	"popelect/internal/junta"
	"popelect/internal/rng"
	"popelect/internal/sim"
	"popelect/internal/simtest"
	"popelect/internal/stats"
)

// TestAlwaysElectsOneLeader is the Las Vegas guarantee of Theorem 8.2 across
// population sizes, including degenerate ones, over many seeds.
func TestAlwaysElectsOneLeader(t *testing.T) {
	sizes := []int{2, 3, 4, 5, 8, 16, 33, 64, 100}
	for _, n := range sizes {
		pr := MustNew(DefaultParams(n))
		rs := simtest.MustTrials(t)(sim.RunTrials[State, *Protocol](func(int) *Protocol { return pr },
			sim.TrialConfig{Trials: 20, Seed: uint64(n) * 17}))
		for i, res := range rs {
			if !res.Converged {
				t.Fatalf("n=%d trial %d did not converge: %+v", n, i, res)
			}
			if res.Leaders != 1 {
				t.Fatalf("n=%d trial %d elected %d leaders", n, i, res.Leaders)
			}
		}
	}
}

func TestAblationsStillElectOneLeader(t *testing.T) {
	for _, p := range []Params{
		{N: 128, Gamma: 36, Phi: 1, Psi: 4, NoFastElim: true},
		{N: 128, Gamma: 36, Phi: 1, Psi: 4, NoDrag: true},
		{N: 128, Gamma: 36, Phi: 1, Psi: 4, NoFastElim: true, NoDrag: true},
	} {
		pr := MustNew(p)
		rs := simtest.MustTrials(t)(sim.RunTrials[State, *Protocol](func(int) *Protocol { return pr },
			sim.TrialConfig{Trials: 10, Seed: 99}))
		for i, res := range rs {
			if !res.Converged || res.Leaders != 1 {
				t.Fatalf("%s trial %d: %+v", pr.Name(), i, res)
			}
		}
	}
}

// TestJuntaWithinLemma53Bounds checks the junta size C_Φ ∈ [n^0.45, n^0.77]
// at convergence (with slack for the constant in front at moderate n).
func TestJuntaWithinLemma53Bounds(t *testing.T) {
	n := 1 << 14
	pr := MustNew(DefaultParams(n))
	r := sim.NewRunner[State, *Protocol](pr, rng.New(31))
	res := r.Run()
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	j := float64(pr.JuntaSize(r.Population()))
	lo, hi := junta.JuntaSizeBounds(n)
	if j < lo/2 || j > 2*hi {
		t.Fatalf("junta size %v outside [%v, %v]", j, lo/2, 2*hi)
	}
}

// TestUninitiatedDepleted is Lemma 4.1's consequence: after stabilization at
// most one agent remains in role 0, and few in X/D relative to n.
func TestUninitiatedDepleted(t *testing.T) {
	n := 1 << 13
	pr := MustNew(DefaultParams(n))
	r := sim.NewRunner[State, *Protocol](pr, rng.New(41))
	res := r.Run()
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	roles := pr.RoleCensus(r.Population())
	if roles[RoleZero] > 1 {
		t.Fatalf("%d zeros after convergence", roles[RoleZero])
	}
	stragglers := roles[RoleX] + roles[RoleD]
	logn := math.Log(float64(n))
	if float64(stragglers) > 8*float64(n)/logn {
		t.Fatalf("%d stragglers; Lemma 4.1 suggests O(n/log n) ≈ %.0f", stragglers, float64(n)/logn)
	}
}

// TestInhibitorDragGeometric is Lemma 7.1: D_ℓ decays geometrically with
// ratio ≈ 4.
func TestInhibitorDragGeometric(t *testing.T) {
	n := 1 << 14
	pr := MustNew(DefaultParams(n))
	r := sim.NewRunner[State, *Protocol](pr, rng.New(51))
	res := r.Run()
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	drags := pr.InhibDragCensus(r.Population())
	// Ratios of consecutive non-tiny levels should be around 4.
	for l := 0; l+1 < len(drags) && drags[l+1] > 50; l++ {
		ratio := float64(drags[l]) / float64(drags[l+1])
		if ratio < 2 || ratio > 8 {
			t.Errorf("D_%d/D_%d = %.2f, want ≈ 4 (census %v)", l, l+1, ratio, drags)
		}
	}
	if drags[0] == 0 {
		t.Fatalf("no inhibitors at drag 0: %v", drags)
	}
}

// TestFastEliminationShrinksActives checks Figure 2's shape on one run: by
// the time candidates enter the final epoch, the active count has dropped
// from ≈ n/2 to O(log n)-scale.
func TestFastEliminationShrinksActives(t *testing.T) {
	n := 1 << 14
	pr := MustNew(DefaultParams(n))
	r := sim.NewRunner[State, *Protocol](pr, rng.New(61))
	activeAtFinal := -1
	r.AddObserver(func(step uint64, pop []State) {
		if activeAtFinal >= 0 {
			return
		}
		if pr.MinLeaderCnt(pop) == 0 {
			a, _, _ := pr.LeaderModeCensus(pop)
			activeAtFinal = a
		}
	}, uint64(n/4))
	res := r.Run()
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	if activeAtFinal < 0 {
		t.Fatal("final epoch never observed")
	}
	if activeAtFinal < 1 {
		t.Fatal("no active candidate reached the final epoch")
	}
	logn := math.Log(float64(n))
	// Lemma 6.2: O(log n / q1) with q1 the level-1 coin bias (≈ 1/20);
	// allow a wide constant.
	if float64(activeAtFinal) > 60*logn {
		t.Fatalf("fast elimination left %d actives (n=%d, 60·ln n = %.0f)",
			activeAtFinal, n, 60*logn)
	}
}

// TestConvergenceScalesSubquadratically compares the core protocol to the
// slow Θ(n) baseline shape: parallel time must grow far slower than
// linearly in n.
func TestConvergenceScalesSubquadratically(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling test")
	}
	mean := func(n int) float64 {
		pr := MustNew(DefaultParams(n))
		rs := simtest.MustTrials(t)(sim.RunTrials[State, *Protocol](func(int) *Protocol { return pr },
			sim.TrialConfig{Trials: 5, Seed: uint64(n)}))
		if !sim.AllConverged(rs) {
			t.Fatalf("n=%d: not all converged", n)
		}
		return stats.Mean(sim.ParallelTimes(rs))
	}
	t1 := mean(1 << 10)
	t16 := mean(1 << 14)
	// 16× the population must cost far less than 16× the parallel time;
	// polylog growth gives well under 4×.
	if t16 > 6*t1 {
		t.Fatalf("parallel time grew from %.0f to %.0f over 16× n — not polylogarithmic", t1, t16)
	}
}
