package core

import "fmt"

// State is the packed per-agent state.
//
// Layout (uint32):
//
//	bits  0..7   phase ∈ {0..Γ−1}            (all roles)
//	bits  8..10  role
//	bits 11..14  coin level / inhibitor drag  (C / I)
//	bit  15      coin stopped / inhibitor stopped (C / I)
//	bit  16      inhibitor elevation high     (I)
//	bits 11..12  leader mode A/P/W            (L)
//	bits 13..14  flip none/heads/tails        (L)
//	bit  15      headsSeen (¬void)            (L)
//	bits 16..21  round counter cnt            (L)
//	bits 22..25  leader drag                  (L)
//
// The all-zero State is the protocol's initial state: role 0 ("uninitiated")
// at phase 0.
type State uint32

// Role is an agent's sub-population (Section 4). Roles are assigned by the
// symmetry-breaking rules (1) and never change afterwards, except that
// uninitiated agents deactivate at the end of the first round (rule (2)).
type Role uint8

// The paper's roles.
const (
	RoleZero Role = iota // uninitiated, pre-rule-(1)
	RoleX                // intermediate, between the two splits of rule (1)
	RoleC                // coin
	RoleI                // inhibitor
	RoleL                // leader candidate
	RoleD                // deactivated straggler
	numRoles
)

func (r Role) String() string {
	switch r {
	case RoleZero:
		return "0"
	case RoleX:
		return "X"
	case RoleC:
		return "C"
	case RoleI:
		return "I"
	case RoleL:
		return "L"
	case RoleD:
		return "D"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// LeaderMode distinguishes leader candidates (Section 7): active candidates
// flip coins and drive the drag counter; passive candidates lost a round but
// remain alive (they still map to the leader output); withdrawn candidates
// are followers.
type LeaderMode uint8

// Leader candidate modes.
const (
	ModeActive    LeaderMode = iota // A
	ModePassive                     // P
	ModeWithdrawn                   // W
)

func (m LeaderMode) String() string {
	switch m {
	case ModeActive:
		return "A"
	case ModePassive:
		return "P"
	case ModeWithdrawn:
		return "W"
	}
	return fmt.Sprintf("LeaderMode(%d)", uint8(m))
}

// Flip is a leader candidate's coin-flip result for the current round.
type Flip uint8

// Flip values.
const (
	FlipNone Flip = iota
	FlipHeads
	FlipTails
)

func (f Flip) String() string {
	switch f {
	case FlipNone:
		return "none"
	case FlipHeads:
		return "heads"
	case FlipTails:
		return "tails"
	}
	return fmt.Sprintf("Flip(%d)", uint8(f))
}

const (
	phaseMask = 0xff

	roleShift = 8
	roleMask  = 0x7

	levelShift = 11
	levelMask  = 0xf
	stopBit    = 1 << 15 // coin or inhibitor preprocessing stopped
	highBit    = 1 << 16 // inhibitor elevation

	lmodeShift   = 11
	lmodeMask    = 0x3
	flipShift    = 13
	flipMask     = 0x3
	headsSeenBit = 1 << 15
	cntShift     = 16
	cntMask      = 0x3f
	ldragShift   = 22
	ldragMask    = 0xf
)

// Phase returns the agent's phase-clock value.
func (s State) Phase() uint8 { return uint8(s & phaseMask) }

// WithPhase returns s with the phase replaced.
func (s State) WithPhase(p uint8) State { return s&^phaseMask | State(p) }

// Role returns the agent's role.
func (s State) Role() Role { return Role(s >> roleShift & roleMask) }

// withRolePayload replaces role and the role-specific payload bits,
// preserving the phase.
func (s State) withRolePayload(r Role, payload State) State {
	return s&phaseMask | State(r)<<roleShift | payload
}

// --- Coin accessors (RoleC) ---

// CoinLevel returns a coin's level.
func (s State) CoinLevel() uint8 { return uint8(s >> levelShift & levelMask) }

// CoinStopped reports whether a coin has stopped climbing levels.
func (s State) CoinStopped() bool { return s&stopBit != 0 }

func (s State) withCoin(level uint8, stopped bool) State {
	out := s&phaseMask | State(RoleC)<<roleShift | State(level)<<levelShift
	if stopped {
		out |= stopBit
	}
	return out
}

// --- Inhibitor accessors (RoleI) ---

// InhibDrag returns an inhibitor's drag value.
func (s State) InhibDrag() uint8 { return uint8(s >> levelShift & levelMask) }

// InhibStopped reports whether an inhibitor finished preprocessing.
func (s State) InhibStopped() bool { return s&stopBit != 0 }

// InhibHigh reports whether an inhibitor is in high elevation.
func (s State) InhibHigh() bool { return s&highBit != 0 }

func (s State) withInhib(drag uint8, stopped, high bool) State {
	out := s&phaseMask | State(RoleI)<<roleShift | State(drag)<<levelShift
	if stopped {
		out |= stopBit
	}
	if high {
		out |= highBit
	}
	return out
}

// --- Leader accessors (RoleL) ---

// Mode returns a leader candidate's mode.
func (s State) Mode() LeaderMode { return LeaderMode(s >> lmodeShift & lmodeMask) }

// FlipVal returns a leader candidate's coin-flip result.
func (s State) FlipVal() Flip { return Flip(s >> flipShift & flipMask) }

// HeadsSeen reports whether the candidate knows heads were drawn this round
// (the negation of the paper's void flag).
func (s State) HeadsSeen() bool { return s&headsSeenBit != 0 }

// Cnt returns a leader candidate's round counter; 0 means the final epoch.
func (s State) Cnt() uint8 { return uint8(s >> cntShift & cntMask) }

// LeaderDrag returns a leader candidate's drag value.
func (s State) LeaderDrag() uint8 { return uint8(s >> ldragShift & ldragMask) }

// Alive reports whether the state is an alive leader candidate (active or
// passive) — the states that map to the leader output.
func (s State) Alive() bool {
	return s.Role() == RoleL && s.Mode() != ModeWithdrawn
}

func (s State) withLeader(m LeaderMode, f Flip, headsSeen bool, cnt, drag uint8) State {
	out := s&phaseMask | State(RoleL)<<roleShift |
		State(m)<<lmodeShift | State(f)<<flipShift |
		State(cnt)<<cntShift | State(drag)<<ldragShift
	if headsSeen {
		out |= headsSeenBit
	}
	return out
}

// String renders the state for traces and debugging.
func (s State) String() string {
	switch s.Role() {
	case RoleC:
		return fmt.Sprintf("C⟨lvl=%d,%v,φ=%d⟩", s.CoinLevel(), stopString(s.CoinStopped()), s.Phase())
	case RoleI:
		elev := "low"
		if s.InhibHigh() {
			elev = "high"
		}
		return fmt.Sprintf("I⟨drag=%d,%v,%s,φ=%d⟩", s.InhibDrag(), stopString(s.InhibStopped()), elev, s.Phase())
	case RoleL:
		return fmt.Sprintf("L⟨%v,cnt=%d,%v,heard=%t,drag=%d,φ=%d⟩",
			s.Mode(), s.Cnt(), s.FlipVal(), s.HeadsSeen(), s.LeaderDrag(), s.Phase())
	default:
		return fmt.Sprintf("%v⟨φ=%d⟩", s.Role(), s.Phase())
	}
}

func stopString(stopped bool) string {
	if stopped {
		return "stop"
	}
	return "adv"
}
