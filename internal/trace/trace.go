// Package trace records and replays interaction schedules. A recorded
// trace pins down the entire execution of a (deterministic) protocol — the
// uniform random scheduler is the only source of randomness in the model —
// so replaying it reproduces every state of every agent exactly. This is
// the debugging workflow for protocol development: capture a failing run
// once, then re-execute it as often as needed, under different
// instrumentation, in a different protocol variant, or after a bisected
// code change.
package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"popelect/internal/sim"
)

// Recorder wraps a pair source and remembers every pair it hands out.
type Recorder struct {
	// Src is the underlying scheduler.
	Src sim.PairSource

	pairs [][2]int32
}

// NewRecorder wraps src.
func NewRecorder(src sim.PairSource) *Recorder {
	return &Recorder{Src: src}
}

// Pair implements sim.PairSource.
func (r *Recorder) Pair(n int) (int, int) {
	a, b := r.Src.Pair(n)
	r.pairs = append(r.pairs, [2]int32{int32(a), int32(b)})
	return a, b
}

// Len returns the number of recorded interactions.
func (r *Recorder) Len() int { return len(r.pairs) }

// Trace returns the recorded schedule.
func (r *Recorder) Trace() *Trace { return &Trace{Pairs: r.pairs} }

// Trace is a recorded interaction schedule.
type Trace struct {
	Pairs [][2]int32
}

// Len returns the number of interactions in the trace.
func (t *Trace) Len() int { return len(t.Pairs) }

// Replayer replays a trace as a sim.PairSource. After the trace is
// exhausted it falls back to Fallback if set, and panics otherwise
// (replaying beyond the recorded horizon without a fallback is a bug).
type Replayer struct {
	trace    *Trace
	pos      int
	Fallback sim.PairSource
}

// NewReplayer replays t from the beginning.
func NewReplayer(t *Trace) *Replayer { return &Replayer{trace: t} }

// Pair implements sim.PairSource.
func (r *Replayer) Pair(n int) (int, int) {
	if r.pos >= len(r.trace.Pairs) {
		if r.Fallback != nil {
			return r.Fallback.Pair(n)
		}
		panic("trace: replay exhausted and no fallback set")
	}
	p := r.trace.Pairs[r.pos]
	r.pos++
	a, b := int(p[0]), int(p[1])
	if a < 0 || b < 0 || a >= n || b >= n || a == b {
		panic(fmt.Sprintf("trace: recorded pair (%d, %d) invalid for population %d", a, b, n))
	}
	return a, b
}

// Pos returns how many interactions have been replayed.
func (r *Replayer) Pos() int { return r.pos }

const magic = uint32(0x70747263) // "ptrc"

// Save writes the trace in a compact binary format.
func (t *Trace) Save(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, magic); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(len(t.Pairs))); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	if err := binary.Write(w, binary.LittleEndian, t.Pairs); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Load reads a trace written by Save.
func Load(r io.Reader) (*Trace, error) {
	var m uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %#x", m)
	}
	var count uint64
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	const maxTrace = 1 << 32
	if count > maxTrace {
		return nil, fmt.Errorf("trace: implausible length %d", count)
	}
	pairs := make([][2]int32, count)
	if err := binary.Read(r, binary.LittleEndian, &pairs); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &Trace{Pairs: pairs}, nil
}
