package trace

import (
	"bytes"
	"testing"

	"popelect/internal/core"
	"popelect/internal/rng"
	"popelect/internal/sim"
)

func TestRecordReplayReproducesExecution(t *testing.T) {
	pr := core.MustNew(core.DefaultParams(256))

	// Record a full election.
	rec := NewRecorder(rng.New(42))
	r1 := sim.NewRunner[core.State, *core.Protocol](pr, rec)
	res1 := r1.Run()
	if !res1.Converged {
		t.Fatalf("%+v", res1)
	}
	pop1 := append([]core.State(nil), r1.Population()...)

	// Replay it.
	rep := NewReplayer(rec.Trace())
	r2 := sim.NewRunner[core.State, *core.Protocol](pr, rep)
	res2 := r2.Run()
	if res2.Interactions != res1.Interactions || res2.LeaderID != res1.LeaderID {
		t.Fatalf("replay diverged: %+v vs %+v", res1, res2)
	}
	for i, s := range r2.Population() {
		if s != pop1[i] {
			t.Fatalf("agent %d state differs after replay: %v vs %v", i, s, pop1[i])
		}
	}
	if rep.Pos() != rec.Len() {
		t.Fatalf("replay consumed %d of %d interactions", rep.Pos(), rec.Len())
	}
}

func TestReplayerExhaustionPanics(t *testing.T) {
	rep := NewReplayer(&Trace{Pairs: [][2]int32{{0, 1}}})
	rep.Pair(2)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted replay without fallback must panic")
		}
	}()
	rep.Pair(2)
}

func TestReplayerFallback(t *testing.T) {
	rep := NewReplayer(&Trace{Pairs: [][2]int32{{0, 1}}})
	rep.Fallback = rng.New(7)
	a, b := rep.Pair(10)
	if a != 0 || b != 1 {
		t.Fatalf("first pair (%d, %d)", a, b)
	}
	for i := 0; i < 100; i++ {
		a, b = rep.Pair(10)
		if a == b || a < 0 || b < 0 || a >= 10 || b >= 10 {
			t.Fatalf("fallback produced invalid pair (%d, %d)", a, b)
		}
	}
}

func TestReplayerValidatesPairs(t *testing.T) {
	cases := []*Trace{
		{Pairs: [][2]int32{{5, 5}}},  // equal
		{Pairs: [][2]int32{{-1, 0}}}, // negative
		{Pairs: [][2]int32{{0, 99}}}, // out of range
	}
	for _, tr := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("invalid pair %v must panic", tr.Pairs[0])
				}
			}()
			NewReplayer(tr).Pair(10)
		}()
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rec := NewRecorder(rng.New(3))
	for i := 0; i < 1000; i++ {
		rec.Pair(64)
	}
	var buf bytes.Buffer
	if err := rec.Trace().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1000 {
		t.Fatalf("loaded %d pairs", loaded.Len())
	}
	for i, p := range loaded.Pairs {
		if p != rec.Trace().Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated input must fail")
	}
	if _, err := Load(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Fatal("bad magic must fail")
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	empty := &Trace{}
	if err := empty.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil || loaded.Len() != 0 {
		t.Fatalf("empty trace roundtrip: %v, %d", err, loaded.Len())
	}
}

// TestCrossProtocolReplay replays one schedule under two protocol variants
// — the workflow for bisecting behavioural changes: same interactions,
// different rules.
func TestCrossProtocolReplay(t *testing.T) {
	full := core.MustNew(core.Params{N: 128, Gamma: 36, Phi: 1, Psi: 4})
	nodrg := core.MustNew(core.Params{N: 128, Gamma: 36, Phi: 1, Psi: 4, NoDrag: true})

	rec := NewRecorder(rng.New(11))
	r1 := sim.NewRunner[core.State, *core.Protocol](full, rec)
	r1.RunSteps(20000)

	rep := NewReplayer(rec.Trace())
	r2 := sim.NewRunner[core.State, *core.Protocol](nodrg, rep)
	r2.RunSteps(20000)

	// The two variants share every rule except the drag machinery, so
	// their role splits under the same schedule must agree exactly
	// (roles are assigned before any drag rule can fire).
	c1 := full.RoleCensus(r1.Population())
	c2 := nodrg.RoleCensus(r2.Population())
	for _, role := range []core.Role{core.RoleC, core.RoleL} {
		if c1[role] != c2[role] {
			t.Fatalf("role %v differs under identical schedule: %d vs %d",
				role, c1[role], c2[role])
		}
	}
}
