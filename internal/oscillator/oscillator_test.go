package oscillator

import (
	"testing"

	"popelect/internal/rng"
	"popelect/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if _, err := New(2); err == nil {
		t.Fatal("n=2 must be rejected")
	}
}

func TestDeltaRules(t *testing.T) {
	p, _ := New(9)
	cases := []struct{ r, i, wantR uint32 }{
		{B, A, A}, // A + B → A + A
		{C, B, B}, // B + C → B + B
		{A, C, C}, // C + A → C + C
		{A, B, A}, // predator unaffected as responder
		{B, C, B},
		{C, A, C},
		{A, A, A}, // same species: null
		{B, B, B},
		{C, C, C},
	}
	for _, c := range cases {
		nr, ni := p.Delta(c.r, c.i)
		if nr != c.wantR {
			t.Errorf("Delta(%d, %d) responder = %d, want %d", c.r, c.i, nr, c.wantR)
		}
		if ni != c.i {
			t.Errorf("Delta(%d, %d) changed initiator", c.r, c.i)
		}
	}
}

func TestInitBalanced(t *testing.T) {
	p, _ := New(9)
	var counts [3]int
	for i := 0; i < 9; i++ {
		counts[p.Init(i)]++
	}
	if counts[0] != 3 || counts[1] != 3 || counts[2] != 3 {
		t.Fatalf("unbalanced init: %v", counts)
	}
}

// TestOscillation: at moderate n the species censuses cross the n/3 line
// repeatedly before absorption — the behaviour CGK+15 analyze and the
// paper's phase clocks stabilize.
func TestOscillation(t *testing.T) {
	n := 3000
	p, _ := New(n)
	r := sim.NewRunner[uint32, *Protocol](p, rng.New(7))
	crossings := 0
	prevAbove := r.Counts()[A] > int64(n/3)
	for k := 0; k < 400; k++ {
		r.RunSteps(uint64(n / 4))
		if r.Counts()[A] == int64(n) || r.Counts()[A] == 0 {
			break
		}
		above := r.Counts()[A] > int64(n/3)
		if above != prevAbove {
			crossings++
			prevAbove = above
		}
	}
	if crossings < 4 {
		t.Fatalf("species A crossed its mean only %d times; no oscillation", crossings)
	}
}

// TestAbsorption: small populations drift to a single species quickly, and
// the stability predicate recognizes it.
func TestAbsorption(t *testing.T) {
	p, _ := New(24)
	r := sim.NewRunner[uint32, *Protocol](p, rng.New(3))
	res := r.Run()
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	nonzero := 0
	for _, c := range res.Counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("absorbed into %d species: %v", nonzero, res.Counts)
	}
}

func TestTwoSpeciesResolve(t *testing.T) {
	// Start without species C: B must die out (A converts it), leaving
	// all-A.
	p, _ := New(30)
	o := sim.NewOverride[uint32, *Protocol](p, func(i int) uint32 {
		return uint32(i % 2) // A and B only
	})
	r := sim.NewRunner[uint32, *sim.Override[uint32, *Protocol]](o, rng.New(9))
	res := r.Run()
	if !res.Converged {
		t.Fatalf("%+v", res)
	}
	if res.Counts[A] != 30 {
		t.Fatalf("A must win the A/B pair: %v", res.Counts)
	}
}

func TestStablePredicate(t *testing.T) {
	p, _ := New(9)
	if !p.Stable([]int64{9, 0, 0}) || !p.Stable([]int64{0, 9, 0}) {
		t.Fatal("single species must be stable")
	}
	if p.Stable([]int64{5, 4, 0}) || p.Stable([]int64{3, 3, 3}) {
		t.Fatal("multi-species states are not stable")
	}
	if p.Leader(A) || p.Name() == "" || p.NumClasses() != 3 {
		t.Fatal("metadata broken")
	}
}
