// Package oscillator implements the 3-state Lotka–Volterra protocol studied
// by Czyzowicz et al. (ICALP 2015), which the paper cites as the conceptual
// ancestor of phase clocks: three species chase each other cyclically,
//
//	A + B → A + A,   B + C → B + B,   C + A → C + C,
//
// (the responder converts a prey initiator), so the species censuses
// oscillate around the even split for a long time before random drift
// absorbs the system in a single species. The oscillation period is the
// primitive "clock" that junta-driven phase clocks later made robust.
package oscillator

import "fmt"

// Species.
const (
	A uint32 = iota
	B
	C
)

// Protocol implements sim.Protocol.
type Protocol struct {
	Size int
}

// New builds an oscillator over n agents, species split as evenly as
// possible.
func New(n int) (*Protocol, error) {
	if n < 3 {
		return nil, fmt.Errorf("oscillator: population %d < 3", n)
	}
	return &Protocol{Size: n}, nil
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return "oscillator(CGK+15)" }

// N implements sim.Protocol.
func (p *Protocol) N() int { return p.Size }

// Init implements sim.Protocol: species assigned round-robin.
func (p *Protocol) Init(i int) uint32 { return uint32(i % 3) }

// prey returns the species that s converts.
func prey(s uint32) uint32 { return (s + 1) % 3 }

// Delta implements sim.Protocol: if the initiator is the responder's prey,
// the responder converts it... in the one-way convention the responder
// updates, so the responder joins the predator when it is the prey.
func (p *Protocol) Delta(r, i uint32) (uint32, uint32) {
	if prey(i) == r {
		return i, i
	}
	return r, i
}

// NumClasses implements sim.Protocol.
func (p *Protocol) NumClasses() int { return 3 }

// Class implements sim.Protocol.
func (p *Protocol) Class(s uint32) uint8 { return uint8(s) }

// Leader implements sim.Protocol; oscillators elect no leader.
func (p *Protocol) Leader(uint32) bool { return false }

// Stable implements sim.Protocol: absorption happens when two species are
// extinct — the survivor has no prey left to convert… almost: a single
// species is trivially absorbing; two species where one is the other's
// predator collapse to one. Only the one-species states are stable.
func (p *Protocol) Stable(counts []int64) bool {
	nonzero := 0
	for _, c := range counts {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero == 1 {
		return true
	}
	// Two species can coexist forever only if neither preys on the
	// other, which is impossible in a 3-cycle; but a predator-prey pair
	// still evolves, so it is not stable.
	return false
}
