package store_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"popelect/internal/sim"
	"popelect/internal/stats"
	"popelect/internal/store"
)

func testKey() store.Key {
	return store.Key{
		Kind:     "trials",
		Protocol: "gs18",
		N:        1 << 12,
		Trials:   5,
		Seed:     2019,
		Backend:  "counts",
		Batch:    "auto",
	}
}

func TestKeyHashStableAndSensitive(t *testing.T) {
	k := testKey()
	if k.Hash() != k.Hash() {
		t.Fatal("hash is not deterministic")
	}
	seen := map[string]string{k.Hash(): "base"}
	variants := map[string]store.Key{}
	for name, mut := range map[string]func(*store.Key){
		"kind":       func(k *store.Key) { k.Kind = "series" },
		"protocol":   func(k *store.Key) { k.Protocol = "core" },
		"n":          func(k *store.Key) { k.N++ },
		"trials":     func(k *store.Key) { k.Trials++ },
		"seed":       func(k *store.Key) { k.Seed++ },
		"budget":     func(k *store.Key) { k.Budget = 1 },
		"backend":    func(k *store.Key) { k.Backend = "dense" },
		"batch":      func(k *store.Key) { k.Batch = "exact" },
		"workers":    func(k *store.Key) { k.Workers = 8 },
		"shards":     func(k *store.Key) { k.Shards = 4 },
		"migration":  func(k *store.Key) { k.Migration = 0.25 },
		"shardEpoch": func(k *store.Key) { k.ShardEpoch = 1024 },
		"gamma":      func(k *store.Key) { k.Gamma = 60 },
		"probeEvery": func(k *store.Key) { k.ProbeEvery = 256 },
		"extra":      func(k *store.Key) { k.Extra = "bias=0.5" },
	} {
		v := testKey()
		mut(&v)
		variants[name] = v
	}
	for name, v := range variants {
		h := v.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("changing %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

func TestResultsRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()

	if _, ok, err := s.GetResults(k); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	rs := []sim.Result{
		{Converged: true, Interactions: 123456, N: 1 << 12, Leaders: 1, LeaderID: 7, Counts: []int64{1, 4095}, Seed: 0},
		{Converged: false, Interactions: 999, N: 1 << 12, Leaders: 3, LeaderID: -1, Counts: []int64{3, 4093}, Seed: 1},
	}
	if err := s.PutResults(k, rs); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetResults(k)
	if err != nil || !ok {
		t.Fatalf("after put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rs)
	}
	if h, m := s.Stats(); h != 1 || m != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 1, 1", h, m)
	}

	// A different key misses without touching the stored entry.
	other := k
	other.Seed++
	if _, ok, err := s.GetResults(other); err != nil || ok {
		t.Fatalf("other key: ok=%v err=%v", ok, err)
	}
}

func TestSeriesRoundTrip(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	k.Kind = "series"
	k.ProbeEvery = 64

	a := stats.NewSeries("leaders", 0)
	b := stats.NewSeries("classes", 0)
	for i := 0; i < 500; i++ {
		a.Add(uint64(i*64), float64(500-i))
		b.Add(uint64(i*64), float64(i%7)+0.5)
	}
	orig := []*stats.Series{a, b}
	if err := s.PutSeries(k, orig); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.GetSeries(k)
	if err != nil || !ok {
		t.Fatalf("after put: ok=%v err=%v", ok, err)
	}
	if len(got) != len(orig) {
		t.Fatalf("got %d series, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Name != orig[i].Name {
			t.Fatalf("series %d name %q, want %q", i, got[i].Name, orig[i].Name)
		}
		ws, wv := orig[i].Points()
		gs, gv := got[i].Points()
		if !reflect.DeepEqual(gs, ws) || !reflect.DeepEqual(gv, wv) {
			t.Fatalf("series %q points differ after round trip", orig[i].Name)
		}
	}

	// A results lookup against a series entry is a typed error, not a hit.
	if _, _, err := s.GetResults(k); err == nil || !strings.Contains(err.Error(), "no results") {
		t.Fatalf("GetResults on series entry: %v", err)
	}
}

func TestSecondOpenIsHit(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	rs := []sim.Result{{Converged: true, Interactions: 42, N: 8, Leaders: 1, LeaderID: 0, Counts: []int64{1, 7}}}

	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s1.GetResults(k); ok {
		t.Fatal("fresh store should miss")
	}
	if err := s1.PutResults(k, rs); err != nil {
		t.Fatal(err)
	}

	// A fresh Store over the same directory — a new process — hits.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s2.GetResults(k)
	if err != nil || !ok {
		t.Fatalf("second open: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, rs) {
		t.Fatal("second open returned different results")
	}
	if h, m := s2.Stats(); h != 1 || m != 0 {
		t.Fatalf("second open stats = %d hits, %d misses; want 1, 0", h, m)
	}
}

func TestCorruptEntryIsErrorNotMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.PutResults(k, []sim.Result{{N: 8}}); err != nil {
		t.Fatal(err)
	}
	h := k.Hash()
	path := filepath.Join(dir, h[:2], h+".json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.GetResults(k); err == nil || ok {
		t.Fatalf("corrupt entry: ok=%v err=%v (want error)", ok, err)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := testKey()
	if err := s.PutResults(k, []sim.Result{{N: 8}}); err != nil {
		t.Fatal(err)
	}
	h := k.Hash()
	path := filepath.Join(dir, h[:2], h+".json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `"version":1`, `"version":99`, 1)
	if tampered == string(data) {
		t.Fatal("could not rewrite version field")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetResults(k); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Fatalf("tampered version: %v", err)
	}
}
