// Package store is a content-addressed cache for simulation artifacts:
// trial results and probe time-series, keyed by a hash of everything that
// determines them (protocol, population size, seed, budget, backend, batch
// policy, sharding, protocol parameters, and a format version). Because
// every engine is deterministic given its configuration and PRNG stream,
// the cache key fully determines the value — a hit can be substituted for
// a re-run, which is what lets sweeps and the paper experiments skip cells
// they have already computed.
//
// Entries live under the store directory as <hash[:2]>/<hash>.json, written
// atomically (temp + rename), so a killed run never leaves a truncated
// entry behind. The stored envelope embeds the full key; Get verifies it
// against the requested key, so a hash collision or a schema drift surfaces
// as an error rather than a silently wrong result.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"popelect/internal/sim"
	"popelect/internal/stats"
)

// schemaVersion is folded into every key hash; bump it whenever the
// meaning of a key field or the envelope layout changes, so stale entries
// from older binaries miss instead of deserializing wrongly.
const schemaVersion = 1

// Key identifies one cached computation. Every field that influences the
// simulated trajectory or its observation must appear here; two runs with
// equal keys are byte-identical by the determinism contract, which is the
// only reason substituting a cached value is sound. Fields irrelevant to a
// given entry stay at their zero value (the hash covers them anyway, so a
// zero Shards and an unset Shards are the same key — as they should be,
// since both select the single-census engine).
type Key struct {
	// Kind namespaces the entry: what computation produced it
	// (e.g. "trials", "series", an experiment id). Entries of different
	// kinds never collide even with equal parameters.
	Kind string `json:"kind"`

	// Protocol names the protocol variant (registry name or equivalent).
	Protocol string `json:"protocol"`

	// N is the population size.
	N int `json:"n"`

	// Trials is the number of independent runs aggregated in the entry.
	Trials int `json:"trials"`

	// Seed is the base PRNG seed.
	Seed uint64 `json:"seed"`

	// Budget is the interaction bound (0 = the backend default).
	Budget uint64 `json:"budget"`

	// Backend is the engine selection ("dense", "counts", "auto", ...).
	Backend string `json:"backend"`

	// Batch fingerprints the batch policy (e.g. "auto", "adaptive(ε=0.02)",
	// "exact", a fixed length). String-typed so the store does not chase
	// the sim package's policy representation.
	Batch string `json:"batch,omitempty"`

	// Workers is the engine-internal fan-out (sim.CountsEngine.Workers).
	// It belongs in the key because different worker counts consume
	// randomness in different orders and yield different (statistically
	// equivalent) trajectories. Trial-level concurrency does not: RunTrials
	// results are independent of its pool size.
	Workers int `json:"workers,omitempty"`

	// Shards is the sharded engine's K (0 or 1 = single census).
	Shards int `json:"shards,omitempty"`

	// Migration is the sharded engine's λ as configured (0 = default).
	Migration float64 `json:"migration,omitempty"`

	// ShardEpoch is the sharded engine's epoch override (0 = default).
	ShardEpoch uint64 `json:"shardEpoch,omitempty"`

	// Gamma is the phase-clock resolution override (0 = derived default).
	Gamma int `json:"gamma,omitempty"`

	// ProbeEvery is the census-probe cadence for series entries (0 = none
	// or the per-experiment default).
	ProbeEvery uint64 `json:"probeEvery,omitempty"`

	// Extra discriminates anything the fixed fields do not cover (bias
	// values, φ/ψ overrides, sweep-cell labels). Callers must render it
	// deterministically.
	Extra string `json:"extra,omitempty"`
}

// Hash returns the content address of the key: a hex SHA-256 over a
// canonical rendering of every field plus the schema version.
func (k Key) Hash() string {
	h := sha256.New()
	field := func(name, val string) {
		// Length-prefixed name/value pairs make the encoding injective:
		// no concatenation of fields can masquerade as another.
		fmt.Fprintf(h, "%d:%s=%d:%s;", len(name), name, len(val), val)
	}
	field("schema", strconv.Itoa(schemaVersion))
	field("kind", k.Kind)
	field("protocol", k.Protocol)
	field("n", strconv.Itoa(k.N))
	field("trials", strconv.Itoa(k.Trials))
	field("seed", strconv.FormatUint(k.Seed, 10))
	field("budget", strconv.FormatUint(k.Budget, 10))
	field("backend", k.Backend)
	field("batch", k.Batch)
	field("workers", strconv.Itoa(k.Workers))
	field("shards", strconv.Itoa(k.Shards))
	field("migration", strconv.FormatFloat(k.Migration, 'g', -1, 64))
	field("shardEpoch", strconv.FormatUint(k.ShardEpoch, 10))
	field("gamma", strconv.Itoa(k.Gamma))
	field("probeEvery", strconv.FormatUint(k.ProbeEvery, 10))
	field("extra", k.Extra)
	return hex.EncodeToString(h.Sum(nil))
}

// seriesData is the stored shape of one stats.Series: its exported points.
type seriesData struct {
	Name  string    `json:"name"`
	Steps []uint64  `json:"steps"`
	Vals  []float64 `json:"values"`
}

// envelope is the on-disk entry format.
type envelope struct {
	Version int          `json:"version"`
	Key     Key          `json:"key"`
	Results []sim.Result `json:"results,omitempty"`
	Series  []seriesData `json:"series,omitempty"`
}

// Store is a content-addressed result cache rooted at one directory.
// Methods are safe for concurrent use (every Put is an independent atomic
// file write); the hit/miss counters are cumulative over the Store's
// lifetime.
type Store struct {
	dir    string
	hits   atomic.Uint64
	misses atomic.Uint64
}

// Open opens (creating as needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns the cumulative hit and miss counts of Get* calls.
func (s *Store) Stats() (hits, misses uint64) {
	return s.hits.Load(), s.misses.Load()
}

// String renders the hit/miss tally, for end-of-run logging.
func (s *Store) String() string {
	h, m := s.Stats()
	return fmt.Sprintf("store %s: %d hits, %d misses", s.dir, h, m)
}

// path returns the entry file for a hash, sharded by its first byte so no
// single directory grows unboundedly.
func (s *Store) path(hash string) string {
	return filepath.Join(s.dir, hash[:2], hash+".json")
}

// put writes an envelope atomically under the key's address.
func (s *Store) put(env envelope) error {
	data, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("store: encode: %w", err)
	}
	path := s.path(env.Key.Hash())
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.CreateTemp(dir, ".entry-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// get reads and validates the envelope under the key's address. ok is
// false (a miss) when no entry exists; a present-but-unreadable entry is
// an error, never a silent miss.
func (s *Store) get(k Key) (envelope, bool, error) {
	var env envelope
	data, err := os.ReadFile(s.path(k.Hash()))
	if os.IsNotExist(err) {
		s.misses.Add(1)
		return env, false, nil
	}
	if err != nil {
		return env, false, fmt.Errorf("store: %w", err)
	}
	if err := json.Unmarshal(data, &env); err != nil {
		return env, false, fmt.Errorf("store: corrupt entry %s: %w", s.path(k.Hash()), err)
	}
	if env.Version != schemaVersion {
		return env, false, fmt.Errorf("store: entry %s has schema version %d; this binary uses %d",
			s.path(k.Hash()), env.Version, schemaVersion)
	}
	if env.Key != k {
		return env, false, fmt.Errorf("store: entry %s was stored under a different key (hash collision or schema drift)",
			s.path(k.Hash()))
	}
	s.hits.Add(1)
	return env, true, nil
}

// PutResults stores a batch of trial results under k.
func (s *Store) PutResults(k Key, rs []sim.Result) error {
	return s.put(envelope{Version: schemaVersion, Key: k, Results: rs})
}

// GetResults fetches the trial results stored under k; ok is false on a
// miss. A present entry of the wrong payload type is an error.
func (s *Store) GetResults(k Key) (rs []sim.Result, ok bool, err error) {
	env, ok, err := s.get(k)
	if err != nil || !ok {
		return nil, false, err
	}
	if env.Results == nil {
		return nil, false, fmt.Errorf("store: entry for key %s holds no results", k.Hash())
	}
	return env.Results, true, nil
}

// PutSeries stores probe time-series under k, as their exported points.
func (s *Store) PutSeries(k Key, series []*stats.Series) error {
	env := envelope{Version: schemaVersion, Key: k, Series: make([]seriesData, len(series))}
	for i, sr := range series {
		steps, vals := sr.Points()
		env.Series[i] = seriesData{Name: sr.Name, Steps: steps, Vals: vals}
	}
	return s.put(env)
}

// GetSeries fetches the time-series stored under k, rebuilt so that each
// series exports exactly the stored points; ok is false on a miss.
func (s *Store) GetSeries(k Key) (series []*stats.Series, ok bool, err error) {
	env, ok, err := s.get(k)
	if err != nil || !ok {
		return nil, false, err
	}
	if env.Series == nil {
		return nil, false, fmt.Errorf("store: entry for key %s holds no series", k.Hash())
	}
	series = make([]*stats.Series, len(env.Series))
	for i, sd := range env.Series {
		// Budget one past the stored point count: Series compacts when the
		// retained count reaches the budget, so an exact budget would
		// downsample the final point away.
		sr, err := stats.SeriesFromPoints(sd.Name, len(sd.Steps)+1, sd.Steps, sd.Vals)
		if err != nil {
			return nil, false, fmt.Errorf("store: entry for key %s: series %q: %w", k.Hash(), sd.Name, err)
		}
		series[i] = sr
	}
	return series, true, nil
}
